package experiments

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Figure3 reproduces Figure 3: the BSGF queries A1–A5 under SEQ, PAR,
// GREEDY, HPAR, HPARS, PPAR (and 1-ROUND where applicable), reporting
// net time, total time, input and communication volume — absolute and
// relative to SEQ.
func Figure3(cfg Config) (*Table, error) {
	return bsgfFigure(cfg, "E1", "Figure 3: BSGF queries A1-A5 by strategy", workload.AQueries())
}

// Figure4 reproduces Figure 4: the large BSGF queries B1 and B2.
func Figure4(cfg Config) (*Table, error) {
	return bsgfFigure(cfg, "E2", "Figure 4: large BSGF queries B1-B2 by strategy", workload.BQueries())
}

func bsgfFigure(cfg Config, id, title string, wls []workload.Workload) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"query", "strategy", "net", "total", "input", "comm", "net%seq", "tot%seq", "in%seq", "comm%seq"},
	}
	for _, wl := range wls {
		db := wl.Build(cfg.Scale)
		results, err := cfg.runStrategies(wl, db, bsgfStrategies(wl))
		if err != nil {
			return nil, err
		}
		base := results[0].Metrics // SEQ is first
		for _, r := range results {
			m := r.Metrics
			t.AddRow(wl.Name, string(r.Strategy),
				fmtSecs(m.NetTime), fmtSecs(m.TotalTime), fmtGB(m.InputMB), fmtGB(m.CommMB),
				fmtRel(m.NetTime, base.NetTime), fmtRel(m.TotalTime, base.TotalTime),
				fmtRel(m.InputMB, base.InputMB), fmtRel(m.CommMB, base.CommMB))
		}
	}
	t.AddNote("run at scale %g of the paper's 100M-tuple relations; times/volumes reported in paper-equivalent units (cost model is scale-invariant, see cost.Config.Scaled)", cfg.Scale)
	return t, nil
}

// Figure5 reproduces Figure 5: the SGF query sets C1–C4 under SEQUNIT,
// PARUNIT and GREEDY-SGF, with values relative to SEQUNIT.
func Figure5(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "Figure 5: SGF queries C1-C4, values relative to SEQUNIT",
		Header: []string{"query", "strategy", "net%", "total%", "input%", "comm%", "net", "total"},
	}
	for _, wl := range workload.CQueries() {
		db := wl.Build(cfg.Scale)
		results, err := cfg.runStrategies(wl, db, sgfStrategies())
		if err != nil {
			return nil, err
		}
		base := results[0].Metrics // SEQUNIT first
		for _, r := range results {
			m := r.Metrics
			t.AddRow(wl.Name, string(r.Strategy),
				fmtRel(m.NetTime, base.NetTime), fmtRel(m.TotalTime, base.TotalTime),
				fmtRel(m.InputMB, base.InputMB), fmtRel(m.CommMB, base.CommMB),
				fmtSecs(m.NetTime), fmtSecs(m.TotalTime))
		}
	}
	// §5.3 also reports that Greedy-SGF's sorts matched the brute-force
	// optimum for all tested queries; record the comparison.
	for _, wl := range workload.CQueries() {
		db := wl.Build(cfg.Scale)
		est := coreEstimator(cfg, wl, db)
		greedy := core.GreedySGF(wl.Program)
		greedyCost := est.SortCost(wl.Program, greedy)
		_, optCost := est.BruteForceSGF(wl.Program)
		t.AddNote("%s: Greedy-SGF sort cost %.1f vs brute-force optimal %.1f (ratio %.3f)",
			wl.Name, greedyCost, optCost, greedyCost/optCost)
	}
	return t, nil
}

func coreEstimator(cfg Config, wl workload.Workload, db *relation.Database) *core.Estimator {
	return core.NewEstimator(cfg.CostCfg, cost.Gumbo, db, wl.Program)
}
