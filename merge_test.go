package gumbo

import (
	"testing"
)

func TestMergeQueries(t *testing.T) {
	q1 := MustParse(`Z1 := SELECT x, y FROM R(x, y) WHERE S(x);`)
	q2 := MustParse(`Z2 := SELECT x, y FROM R(x, y) WHERE T(y);`)
	merged, err := Merge(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Subqueries() != 2 {
		t.Errorf("subqueries = %d", merged.Subqueries())
	}
	db := apiDB()
	out, err := EvalAll(merged, db)
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := Eval(q1, db)
	w2, _ := Eval(q2, db)
	if !out.Relation("Z1").Equal(w1) || !out.Relation("Z2").Equal(w2) {
		t.Error("merged evaluation deviates from separate evaluation")
	}
	// MR evaluation of the merged program, with sharing.
	sys := New()
	res, err := sys.Run(merged, db, GreedySGF)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outputs.Relation("Z1").Equal(w1) || !res.Outputs.Relation("Z2").Equal(w2) {
		t.Error("merged MR evaluation wrong")
	}
}

func TestMergeSharesWork(t *testing.T) {
	// Two queries over the same guard: the merged Greedy plan uses
	// fewer jobs than the two separate plans combined.
	q1 := MustParse(`Z1 := SELECT x, y FROM R(x, y) WHERE S(x);`)
	q2 := MustParse(`Z2 := SELECT x, y FROM R(x, y) WHERE T(y);`)
	merged, err := Merge(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	db := apiDB()
	sys := New()
	mergedPlan, err := sys.Plan(merged, db, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := sys.Plan(q1, db, Greedy)
	p2, _ := sys.Plan(q2, db, Greedy)
	if mergedPlan.Jobs() >= p1.Jobs()+p2.Jobs() {
		t.Errorf("merged plan has %d jobs vs separate %d+%d",
			mergedPlan.Jobs(), p1.Jobs(), p2.Jobs())
	}
}

func TestMergeConflicts(t *testing.T) {
	q1 := MustParse(`Z := SELECT x FROM R(x, y) WHERE S(x);`)
	q2 := MustParse(`Z := SELECT x FROM G(x, y) WHERE T(x);`)
	if _, err := Merge(q1, q2); err == nil {
		t.Error("duplicate output accepted")
	}
	// q4 reads base relation Z1, which q3 defines: ambiguous merge.
	q3 := MustParse(`Z1 := SELECT x FROM R(x, y) WHERE S(x);`)
	q4 := MustParse(`W := SELECT x FROM Z1(x) WHERE T(x);`)
	if _, err := Merge(q3, q4); err == nil {
		t.Error("base/output collision accepted")
	}
}
