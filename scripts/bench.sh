#!/usr/bin/env sh
# bench.sh — run the MR engine micro-benchmarks and write a JSON
# snapshot of ns/op, B/op and allocs/op.
#
# Usage:
#   scripts/bench.sh [output.json]     # default output: bench_snapshot.json
#   BENCHTIME=20x scripts/bench.sh     # override -benchtime
#   BENCH='BenchmarkMSJJob' PKG=. scripts/bench.sh  # other benchmarks/packages
#
# The default set covers the engine hot-path micro-benchmarks
# (./internal/mr/) plus three end-to-end benchmarks at the repo root:
# the Greedy-BSGF query, the deep-DAG pipelined program (the
# partition-level scheduler's headline number), and the skewed query
# with runtime reduce-partition splitting off and on (the adaptive-skew
# headline: compare the split=off and split=on sub-benchmarks); PKG may
# list several packages.
#
# The snapshot schema matches BENCH_pr2.json's "before"/"after" entries,
# so successive snapshots diff cleanly across PRs.
set -eu

out="${1:-bench_snapshot.json}"
benchtime="${BENCHTIME:-10x}"
bench="${BENCH:-BenchmarkRunJobShuffle|BenchmarkReduceGrouping|BenchmarkGreedyBSGFQuery|BenchmarkProgramPipelined|BenchmarkSkewedQuery}"
pkg="${PKG:-./internal/mr/ .}"

cd "$(dirname "$0")/.."
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# shellcheck disable=SC2086 # PKG is intentionally word-split
go test -run NONE -bench "$bench" -benchtime "$benchtime" $pkg | tee "$tmp"

{
	echo '{'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
	printf '  "benchtime": "%s",\n' "$benchtime"
	echo '  "results": ['
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
			bytes = "null"            # benchmarks without b.ReportAllocs()
			allocs = "null"
			for (i = 4; i < NF; i++) {
				if ($(i + 1) == "B/op") bytes = $i
				if ($(i + 1) == "allocs/op") allocs = $i
			}
			if (n++) printf ",\n"
			printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
				name, $2, $3, bytes, allocs
		}
		END { print "" }
	' "$tmp"
	echo '  ]'
	echo '}'
} >"$out"
echo "wrote $out"
