#!/usr/bin/env sh
# lint.sh — the repo's static-analysis gate, exactly what CI's lint job
# runs: gofmt (no unformatted files), go vet, and the project's own
# gumbo-lint analyzer suite (see docs/INVARIANTS.md for the contracts
# it enforces and the //lint:ignore suppression protocol).
#
# Usage:
#   scripts/lint.sh
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go run ./cmd/gumbo-lint ./...

echo "lint: OK"
