// Command docscheck is the CI docs gate: it keeps the documentation's
// code and links honest.
//
// For every markdown file or directory named on the command line it
//
//  1. extracts each ```go code fence, wraps it in a throwaway package
//     inside the module (statement fences become function bodies; fences
//     that declare their own package become standalone files), prefixes
//     every fence with a //line directive pointing back at the markdown
//     source, and compiles the lot with `go build` — an uncompilable
//     fence fails the gate with an error located in the .md file;
//  2. checks every relative markdown link ([text](path)) against the
//     filesystem — a link to a missing file fails the gate.
//
// Fences marked ```go ignore (or any info string other than exactly
// "go") and links to absolute URLs (http/https/mailto) or in-page
// anchors (#...) are skipped. Statement fences may use the identifiers
// imported by the harness preamble: fmt, log, net/http, time, gumbo
// (package repro) and server (repro/internal/server).
//
// Usage:
//
//	go run ./cmd/docscheck README.md docs
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <file.md|dir> ...")
		os.Exit(2)
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	if err := run(root, args); err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: FAIL\n%v\n", err)
		os.Exit(1)
	}
	fmt.Println("docscheck: OK")
}

// findModuleRoot walks up from the working directory to the directory
// containing go.mod (snippets must compile inside the module so they can
// import it).
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// run checks all markdown files found in paths (files, or directories
// scanned non-recursively for *.md) against module root.
func run(moduleRoot string, paths []string) error {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
				files = append(files, filepath.Join(p, e.Name()))
			}
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("no markdown files under %s", strings.Join(paths, " "))
	}

	var problems []string
	var snippets []snippet
	for _, f := range files {
		sn, probs, err := scanFile(f)
		if err != nil {
			return err
		}
		snippets = append(snippets, sn...)
		problems = append(problems, probs...)
	}
	if err := compileSnippets(moduleRoot, snippets); err != nil {
		problems = append(problems, err.Error())
	}
	if len(problems) > 0 {
		return fmt.Errorf("%s", strings.Join(problems, "\n"))
	}
	return nil
}

// snippet is one extracted ```go fence.
type snippet struct {
	file  string // markdown source path as given
	line  int    // 1-based line of the fence's first code line
	code  string
	whole bool // declares its own package: compile as a standalone file
}

var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// scanFile extracts go fences and checks relative links of one markdown
// file. Returned problems are human-readable link failures.
func scanFile(path string) ([]snippet, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	lines := strings.Split(string(data), "\n")
	var snippets []snippet
	var problems []string
	inFence := false
	goFence := false
	var code []string
	codeStart := 0
	fenceOpen := 0 // line of the currently open fence, for the EOF check
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			if !inFence {
				inFence = true
				fenceOpen = i + 1
				info := strings.TrimSpace(strings.TrimPrefix(trimmed, "```"))
				goFence = info == "go"
				code = code[:0]
				codeStart = i + 2 // first code line, 1-based
			} else {
				inFence = false
				if goFence {
					body := strings.Join(code, "\n")
					snippets = append(snippets, snippet{
						file:  path,
						line:  codeStart,
						code:  body,
						whole: strings.HasPrefix(strings.TrimSpace(body), "package "),
					})
				}
			}
			continue
		}
		if inFence {
			if goFence {
				code = append(code, line)
			}
			continue
		}
		// Link check outside fences only.
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q (%s does not exist)", path, i+1, m[1], resolved))
			}
		}
	}
	// An unterminated fence would silently swallow every later fence and
	// link of the file — exactly the malformed state the gate must catch.
	if inFence {
		problems = append(problems, fmt.Sprintf("%s:%d: unterminated code fence (no closing ```)", path, fenceOpen))
	}
	return snippets, problems, nil
}

// preamble is the harness around statement fences. The blank uses keep
// the imports legal for fences that only need a subset.
const preamble = `package docsnippets

import (
	"fmt"
	"log"
	"net/http"
	"time"

	gumbo "repro"
	"repro/internal/server"
)

var (
	_ = fmt.Println
	_ = log.Fatal
	_ = http.ListenAndServe
	_ = time.Second
	_ = gumbo.New
	_ = server.New
)
`

// compileSnippets writes the snippets into a temporary package directory
// under the module root and builds it. //line directives make compiler
// errors point at the markdown sources.
func compileSnippets(moduleRoot string, snippets []snippet) error {
	if len(snippets) == 0 {
		return nil
	}
	// No leading dot: the go tool silently ignores dot- and
	// underscore-prefixed directories (build would "pass" on anything).
	dir, err := os.MkdirTemp(moduleRoot, "docscheck-tmp-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	var harness strings.Builder
	harness.WriteString(preamble)
	nWhole := 0
	for i, sn := range snippets {
		if sn.whole {
			sub := filepath.Join(dir, fmt.Sprintf("prog%d", nWhole))
			if err := os.Mkdir(sub, 0o755); err != nil {
				return err
			}
			src := fmt.Sprintf("//line %s:%d\n%s\n", sn.file, sn.line, sn.code)
			if err := os.WriteFile(filepath.Join(sub, "main.go"), []byte(src), 0o644); err != nil {
				return err
			}
			nWhole++
			continue
		}
		fmt.Fprintf(&harness, "\nfunc docSnippet%d() {\n//line %s:%d\n%s\n}\n", i, sn.file, sn.line, sn.code)
	}
	if err := os.WriteFile(filepath.Join(dir, "snippets.go"), []byte(harness.String()), 0o644); err != nil {
		return err
	}

	cmd := exec.Command("go", "build", "./"+filepath.Base(dir)+"/...")
	cmd.Dir = moduleRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("doc code fences do not compile:\n%s", strings.TrimSpace(string(out)))
	}
	return nil
}
