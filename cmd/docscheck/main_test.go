package main

import (
	"strings"
	"testing"
)

// TestGoodDocPasses: compiling fences (statement and standalone), an
// ignored fence, and valid links pass the gate.
func TestGoodDocPasses(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if err := run(root, []string{"testdata/good.md"}); err != nil {
		t.Fatalf("good.md should pass, got: %v", err)
	}
}

// TestBadCodeFenceFails demonstrates the acceptance requirement: an
// uncompilable ```go fence fails the gate, with the error located in
// the markdown file.
func TestBadCodeFenceFails(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	err = run(root, []string{"testdata/good.md", "testdata/bad_code.md"})
	if err == nil {
		t.Fatal("bad_code.md compiled; the gate must fail on an uncompilable fence")
	}
	if !strings.Contains(err.Error(), "bad_code.md") {
		t.Errorf("error does not point at the markdown source:\n%v", err)
	}
}

// TestBrokenLinkFails demonstrates the other half of the gate: a
// relative link to a missing file fails.
func TestBrokenLinkFails(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	err = run(root, []string{"testdata/bad_link.md"})
	if err == nil {
		t.Fatal("bad_link.md passed; the gate must fail on a broken relative link")
	}
	if !strings.Contains(err.Error(), "does-not-exist.md") {
		t.Errorf("error does not name the broken target:\n%v", err)
	}
}

// TestUnterminatedFenceFails: a fence with no closing ``` must fail the
// gate instead of silently skipping the rest of the file.
func TestUnterminatedFenceFails(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	err = run(root, []string{"testdata/unterminated.md"})
	if err == nil {
		t.Fatal("unterminated.md passed; the gate must fail on an unterminated fence")
	}
	if !strings.Contains(err.Error(), "unterminated") {
		t.Errorf("error does not mention the unterminated fence:\n%v", err)
	}
}

// TestScanFileExtraction pins the extraction rules: only exact ```go
// fences are collected, package fences are marked whole, and fence
// line numbers are recorded for //line directives.
func TestScanFileExtraction(t *testing.T) {
	snippets, problems, err := scanFile("testdata/good.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("unexpected link problems: %v", problems)
	}
	if len(snippets) != 2 {
		t.Fatalf("got %d snippets, want 2 (the ```go ignore and ```sh fences are skipped)", len(snippets))
	}
	if snippets[0].whole || !snippets[1].whole {
		t.Errorf("whole-program detection wrong: %+v", snippets)
	}
	if snippets[0].line != 6 {
		t.Errorf("first snippet starts at line %d, want 6", snippets[0].line)
	}
	if !strings.Contains(snippets[0].code, "gumbo.Parse") {
		t.Errorf("first snippet body missing: %q", snippets[0].code)
	}
}
