// Command gumbo-serve runs the gumbo query service: a long-running HTTP
// JSON API for creating databases, bulk-loading relations and evaluating
// SGF queries concurrently on one shared gumbo.System, with plan caching
// and multi-query micro-batching (see docs/SERVER.md for the API
// reference and a curl walkthrough).
//
// Usage:
//
//	gumbo-serve [-addr :8080] [-workers N] [-jobs N]
//	            [-cache 128] [-batch-window 2ms] [-max-batch 16]
//	            [-query-timeout 0] [-scale 0.001]
//	            [-mem-budget 0] [-query-mem 0]
//	            [-spill-threshold 0] [-spill-dir DIR] [-skew-split 0]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	gumbo "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "engine worker pool for all plan tasks (0 = GOMAXPROCS)")
		//lint:ignore deprecatedknob -jobs here is admission control (concurrent plans at the service layer), not the retired engine parallelism knob
		jobs         = flag.Int("jobs", 0, "admission capacity: concurrently executing plans (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 128, "plan-cache capacity (entries)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch collection window (negative disables batching)")
		maxBatch     = flag.Int("max-batch", 16, "flush a micro-batch early at this many queries")
		maxBody      = flag.Int64("max-body", 32<<20, "request body size cap in bytes")
		queryTimeout = flag.Duration("query-timeout", 0, "per-query deadline incl. admission wait; expired runs return 504 (0 disables)")
		scale        = flag.Float64("scale", 1, "cost-model scale factor (fraction of the paper's data sizes)")
		memBudget    = flag.Int64("mem-budget", 0, "server-wide memory budget in bytes; saturated admission returns 503 (0 = unlimited)")
		queryMem     = flag.Int64("query-mem", 0, "per-query memory budget in bytes; over-budget queries return 413 (0 = unlimited)")
		spillThresh  = flag.Int64("spill-threshold", 0, "spill shuffle partitions at this many bytes (0 = GUMBO_SPILL_THRESHOLD env, negative = off)")
		spillDir     = flag.String("spill-dir", "", "directory for spill temp files (empty = system temp dir)")
		skewSplit    = flag.Float64("skew-split", 0, "split reduce partitions heavier than this ratio x the mean load (0 = GUMBO_SKEW_SPLIT env, negative = off)")
	)
	flag.Parse()

	cfg := server.Config{
		PhaseWorkers:   *workers,
		ConcurrentJobs: *jobs,
		PlanCacheSize:  *cacheSize,
		BatchWindow:    *batchWindow,
		MaxBatch:       *maxBatch,
		MaxBodyBytes:   *maxBody,
		QueryTimeout:   *queryTimeout,
		MemBudget:      *memBudget,
		QueryMemBudget: *queryMem,
		SpillThreshold: *spillThresh,
		SpillDir:       *spillDir,
		SkewSplit:      *skewSplit,
	}
	if *scale != 1 {
		cfg.Options = append(cfg.Options, gumbo.WithScale(*scale))
	}
	srv := server.New(cfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("gumbo-serve listening on %s (cache %d entries, batch window %s)", *addr, *cacheSize, *batchWindow)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("gumbo-serve: %v", err)
	case <-ctx.Done():
		log.Printf("gumbo-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("gumbo-serve: shutdown: %v", err)
		}
	}
}
