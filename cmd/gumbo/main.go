// Command gumbo parses an SGF query, loads or generates its input
// relations, evaluates it under a chosen strategy on the in-process
// MapReduce engine, and reports the output and the paper's performance
// metrics.
//
// Usage:
//
//	gumbo -query q.sgf -data dir [-strategy GREEDY] [-out dir]
//	gumbo -q 'Z := SELECT x FROM R(x,y) WHERE S(x);' -gen -tuples 100000
//
// Data directories hold one TSV file per base relation (<name>.tsv);
// with -gen, synthetic data in the paper's style is generated instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	gumbo "repro"
	"repro/internal/relation"
	"repro/internal/sgf"
	"repro/internal/workload"
)

func main() {
	var (
		queryFile = flag.String("query", "", "file containing the SGF query")
		queryText = flag.String("q", "", "inline SGF query text")
		dataDir   = flag.String("data", "", "directory with <relation>.tsv input files")
		gen       = flag.Bool("gen", false, "generate synthetic inputs instead of loading them")
		tuples    = flag.Int("tuples", 100000, "tuples per generated relation")
		match     = flag.Float64("match", 0.5, "fraction of generated conditional tuples matching the guard")
		seed      = flag.Int64("seed", 1, "generator seed")
		strategy  = flag.String("strategy", "auto", "SEQ|PAR|GREEDY|OPT|1-ROUND|SEQUNIT|PARUNIT|GREEDY-SGF|HPAR|HPARS|PPAR|auto")
		nodes     = flag.Int("nodes", 10, "simulated cluster nodes")
		slots     = flag.Int("slots", 10, "container slots per node")
		scale     = flag.Float64("scale", 0.001, "cost-model scale factor (buffers, splits)")
		outDir    = flag.String("out", "", "directory to write output relations as TSV")
		explain   = flag.Bool("explain", false, "print the plan and query structure without output tuples")
		showRows  = flag.Int("rows", 10, "output tuples to print (0 = none, -1 = all)")
	)
	flag.Parse()

	src := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		fatalIf(err)
		src = string(b)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "gumbo: provide -query FILE or -q 'QUERY'")
		flag.Usage()
		os.Exit(2)
	}
	q, err := gumbo.Parse(src)
	fatalIf(err)

	var db *gumbo.Database
	switch {
	case *gen:
		wl := workload.Workload{
			Name:        "cli",
			Program:     sgf.MustParse(src),
			GuardTuples: *tuples,
			CondTuples:  *tuples,
			MatchFrac:   *match,
			Seed:        *seed,
		}
		db = wl.Build(1.0)
	case *dataDir != "":
		db, err = loadDir(q, *dataDir)
		fatalIf(err)
	default:
		fmt.Fprintln(os.Stderr, "gumbo: provide -data DIR or -gen")
		os.Exit(2)
	}

	sys := gumbo.New(gumbo.WithCluster(*nodes, *slots), gumbo.WithScale(*scale))
	strat := gumbo.Strategy(strings.ToUpper(*strategy))
	if strings.EqualFold(*strategy, "auto") {
		strat = sys.Auto(q)
	}

	fmt.Print(q.Describe())
	plan, err := sys.Plan(q, db, strat)
	fatalIf(err)
	fmt.Printf("plan: %s\n", plan)
	if *explain {
		return
	}

	res, err := sys.Run(q, db, strat)
	fatalIf(err)
	fmt.Printf("metrics: %s\n", res.Metrics)
	fmt.Printf("output %s: %d tuples\n", q.Name(), res.Relation.Size())
	if *showRows != 0 {
		n := *showRows
		if n < 0 || n > res.Relation.Size() {
			n = res.Relation.Size()
		}
		for i, t := range res.Relation.Sorted() {
			if i >= n {
				fmt.Printf("  ... (%d more)\n", res.Relation.Size()-n)
				break
			}
			fmt.Printf("  %s\n", t)
		}
	}
	if *outDir != "" {
		fatalIf(os.MkdirAll(*outDir, 0o755))
		written := 0
		for _, name := range q.OutputNames() {
			rel := res.Outputs.Relation(name)
			if rel == nil {
				continue
			}
			f, err := os.Create(filepath.Join(*outDir, rel.Name()+".tsv"))
			fatalIf(err)
			fatalIf(rel.WriteTSV(f))
			fatalIf(f.Close())
			written++
		}
		fmt.Printf("wrote %d relations to %s\n", written, *outDir)
	}
}

func loadDir(q *gumbo.Query, dir string) (*gumbo.Database, error) {
	db := gumbo.NewDatabase()
	arities := q.BaseRelationArities()
	for _, name := range q.BaseRelations() {
		path := filepath.Join(dir, name+".tsv")
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("relation %s: %w", name, err)
		}
		rel, err := relation.ReadTSV(name, arities[name], f)
		f.Close()
		if err != nil {
			return nil, err
		}
		db.Put(rel)
	}
	return db, nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gumbo:", err)
		os.Exit(1)
	}
}
