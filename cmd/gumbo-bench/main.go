// Command gumbo-bench regenerates the paper's evaluation tables and
// figures (§5) on the in-process engine and cluster simulator.
//
// Usage:
//
//	gumbo-bench                      # the full suite at scale 1/1000
//	gumbo-bench -scale 0.01          # closer to paper scale (slower)
//	gumbo-bench -exp E1,E3           # selected experiments
//	gumbo-bench -list                # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.001, "fraction of the paper's data sizes")
		expList  = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		nodes    = flag.Int("nodes", 10, "simulated cluster nodes")
		verify   = flag.Bool("verify", false, "cross-check outputs against the reference evaluator")
		workers  = flag.Int("workers", 0, "host worker pool for all engine tasks (0 = GOMAXPROCS, 1 = sequential)")
		progress = flag.Bool("v", false, "log each run")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	// Registered for compatibility; the unified task scheduler has no
	// separate job level, so the value is unused (a warning is printed
	// below when the flag is set explicitly).
	flag.Int("jobs", 0, "deprecated: ignored; use -workers") //lint:ignore deprecatedknob compatibility shim: keeps old invocations parsing while the warning below steers users to -workers
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	cfg := experiments.At(*scale)
	cfg.Cluster.Nodes = *nodes
	cfg.HostWorkers = *workers
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "jobs" {
			fmt.Fprintln(os.Stderr, "gumbo-bench: -jobs is deprecated and ignored: the engine runs every task of a plan on one unified worker pool; use -workers (e.g. -workers 1 for host-sequential execution)")
		}
	})
	if *verify {
		cfg.Verify = true
	}
	if *progress {
		cfg.Progress = os.Stderr
	}

	if *expList == "" {
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "gumbo-bench:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range strings.Split(*expList, ",") {
		e := experiments.ByID(strings.TrimSpace(id))
		if e == nil {
			fmt.Fprintf(os.Stderr, "gumbo-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gumbo-bench:", err)
			os.Exit(1)
		}
		table.Render(os.Stdout)
	}
}
