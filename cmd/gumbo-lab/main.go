// Command gumbo-lab sweeps generated SGF scenarios through every
// evaluation strategy at several pool widths, cross-checking all runs
// with a differential oracle, and calibrates the cost model's constants
// against the measured task times.
//
// Usage:
//
//	gumbo-lab -seeds 20
//	gumbo-lab -seeds 5 -widths 1,2,8 -guard-tuples 500 -out lab
//	gumbo-lab -short
//	gumbo-lab -cancel -seeds 5
//	gumbo-lab -faults -seeds 5
//	gumbo-lab -skew -seeds 5
//
// Exit status is 1 when any divergence is found (each is reported with
// a minimal shrunken reproduction), 0 on a clean sweep. With -out P the
// per-run table is written to P-runs.tsv, the per-scenario calibration
// table to P-calibration.tsv, and the full report to P.json.
//
// With -cancel the sweep instead cancels each scenario's run at a
// seeded random task boundary and checks the engine's cancellation
// contract: context.Canceled within a bounded number of task grants,
// untouched input data, no goroutine leaks, and a bit-for-bit clean
// re-run afterwards.
//
// With -faults the sweep injects failures instead: each scenario (run
// with spill forced on) gets a task panic at a seeded random grant
// index and a memory budget seeded below its real charge, checking the
// typed errors (re-raised sentinel, gumbo.ErrBudgetExceeded), untouched
// input data, no goroutine or spill temp-file leaks, and bit-for-bit
// clean re-runs.
//
// With -skew each scenario's zipf and dense variants run with runtime
// skew splitting off and on at every width: outputs and stats must be
// bit-for-bit identical (up to the split observability fields), and the
// sweep reports how much the heaviest reduce task shrank on the runs
// that split.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/lab"
)

func main() {
	var (
		seeds       = flag.Int("seeds", 20, "number of generated scenarios (seeds 1..N)")
		widths      = flag.String("widths", "", "comma-separated pool widths (default 1,4,GOMAXPROCS)")
		guardTuples = flag.Int("guard-tuples", 0, "tuples per guard relation (default 2000)")
		condTuples  = flag.Int("cond-tuples", 0, "tuples per conditional relation (default 2000)")
		scale       = flag.Float64("scale", 0, "cost-config scale (default 1e-4)")
		noShrink    = flag.Bool("no-shrink", false, "skip shrinking failing scenarios")
		short       = flag.Bool("short", false, "small smoke sweep: few seeds, small data, widths 1,2")
		cancelMode  = flag.Bool("cancel", false, "cancellation sweep: cancel each scenario at a seeded task boundary and check clean teardown")
		faultsMode  = flag.Bool("faults", false, "fault sweep: inject task panics and budget exhaustion, check typed errors and clean teardown")
		skewMode    = flag.Bool("skew", false, "skew sweep: run zipf/dense scenario variants with runtime splitting off and on, check bit-for-bit agreement and report the balance gain")
		out         = flag.String("out", "", "output path prefix for TSV/JSON reports")
	)
	flag.Parse()

	scfg := lab.DefaultScenarioConfig()
	swcfg := lab.DefaultSweepConfig()
	if *short {
		*seeds = min(*seeds, 3)
		scfg.GuardTuples, scfg.CondTuples = 300, 300
		swcfg.Widths = []int{1, 2}
	}
	if *guardTuples > 0 {
		scfg.GuardTuples = *guardTuples
	}
	if *condTuples > 0 {
		scfg.CondTuples = *condTuples
	}
	if *scale > 0 {
		swcfg.Scale = *scale
	}
	if *widths != "" {
		ws, err := parseWidths(*widths)
		fatalIf(err)
		swcfg.Widths = ws
	}
	swcfg.Shrink = !*noShrink

	scenarios := lab.GenScenarios(*seeds, scfg)
	if *skewMode {
		fmt.Printf("skew-sweeping %d scenarios (zipf/dense variants, split off vs on)\n", len(scenarios))
		rep := lab.RunSkewSweep(scenarios, swcfg)
		fmt.Printf("%d runs over %d scenario variants, %d split, %d violations\n",
			len(rep.Records), rep.Scenarios, rep.SplitRuns(), len(rep.Failures))
		fmt.Printf("heaviest reduce task shrank %.2fx max, %.2fx mean over split runs\n",
			rep.MaxImprovement(), rep.MeanImprovement())
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "SKEW VIOLATION %s width %d: %s\n", f.Scenario, f.Width, f.Detail)
		}
		if len(rep.Failures) > 0 {
			os.Exit(1)
		}
		return
	}
	if *faultsMode {
		fmt.Printf("fault-sweeping %d scenarios\n", len(scenarios))
		rep := lab.RunFaultSweep(scenarios, swcfg)
		fmt.Printf("%d fault injections across %d scenarios, %d violations\n",
			rep.Checks, rep.Scenarios, len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "FAULT VIOLATION %s [%s @ %d]: %s\n", f.Scenario, f.Mode, f.Boundary, f.Detail)
		}
		if len(rep.Failures) > 0 {
			os.Exit(1)
		}
		return
	}
	if *cancelMode {
		fmt.Printf("cancel-sweeping %d scenarios\n", len(scenarios))
		rep := lab.RunCancelSweep(scenarios, swcfg)
		fmt.Printf("%d scenarios canceled cleanly, %d violations\n",
			rep.Scenarios-len(rep.Failures), len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "CANCEL VIOLATION %s at task boundary %d: %s\n", f.Scenario, f.Boundary, f.Detail)
		}
		if len(rep.Failures) > 0 {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("sweeping %d scenarios × %d strategies\n", len(scenarios), len(lab.AllStrategies()))
	res := lab.RunSweep(scenarios, swcfg)

	cal, err := lab.Calibrate(res.Runs, swcfg.BaseCostConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gumbo-lab: calibration:", err)
	}
	rep := lab.NewReport(res, cal)
	fmt.Println(rep.Summary())
	if cal != nil {
		fmt.Printf("fitted constants: %s\n", cal.Fit.CoeffString())
	}
	for _, s := range res.Skips {
		fmt.Printf("skip %s under %s: %s\n", s.Scenario, s.Strategy, s.Reason)
	}

	if *out != "" {
		writeFile(*out+"-runs.tsv", rep.WriteRunsTSV)
		if cal != nil {
			writeFile(*out+"-calibration.tsv", rep.WriteCalibrationTSV)
		}
		writeFile(*out+".json", rep.WriteJSON)
	}

	for _, d := range res.Divergences {
		fmt.Fprintf(os.Stderr, "DIVERGENCE %s under %s width %d: %s\n", d.Scenario, d.Strategy, d.Width, d.Detail)
		if d.MinimalSource != "" {
			fmt.Fprintf(os.Stderr, "  minimal reproduction (seed %d):\n%s\n", d.MinimalSeed, indent(d.MinimalSource))
		}
	}
	if len(res.Divergences) > 0 {
		os.Exit(1)
	}
}

func parseWidths(s string) ([]int, error) {
	var ws []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad width %q", part)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	fatalIf(err)
	fatalIf(write(f))
	fatalIf(f.Close())
	fmt.Printf("wrote %s\n", path)
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gumbo-lab:", err)
		os.Exit(1)
	}
}
