// Vet unit-checker protocol: the go command, given
// -vettool=gumbo-lint, probes the binary once with -V=full (build
// cache identity) and, when vet flags were passed, with -flags (flag
// discovery), then invokes it once per package with a JSON config file
// describing the compilation unit — file list, import map, and the
// compiler export data of every dependency. This file implements that
// protocol over the shared analysis driver, mirroring
// golang.org/x/tools/go/analysis/unitchecker without the dependency.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// version participates in the go command's content-addressed vet
// cache: bump it when analyzer behavior changes so cached clean
// verdicts are invalidated.
const version = "v1.0.0"

// vetConfig is the JSON the go command writes for each vetted unit
// (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// handleVetProtocol answers the go command's -V / -flags probes.
// Returns true when the invocation was a probe and has been answered.
func handleVetProtocol(args []string) bool {
	for _, arg := range args {
		switch {
		case arg == "-V" || strings.HasPrefix(arg, "-V="):
			fmt.Printf("gumbo-lint version %s\n", version)
			return true
		case arg == "-flags":
			// No analyzer exposes flags; an empty set tells the go
			// command to pass none through.
			fmt.Println("[]")
			return true
		}
	}
	return false
}

// vetUnit checks one compilation unit described by cfgFile and returns
// the process exit code (0 clean, 2 findings — vet's convention).
func vetUnit(cfgFile string) int {
	cfg := new(vetConfig)
	data, err := os.ReadFile(cfgFile)
	if err == nil {
		err = json.Unmarshal(data, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gumbo-lint: reading vet config: %v\n", err)
		return 1
	}
	// The go command expects the facts file regardless of findings;
	// the suite defines no facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "gumbo-lint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "gumbo-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := types.Config{
		Importer:  &vetImporter{cfg: cfg, gc: importer.ForCompiler(fset, compiler, cfgLookup(cfg))},
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "gumbo-lint: %v\n", err)
		return 1
	}

	diags, err := analysis.Run(lint.Analyzers(), fset, files, pkg, info, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gumbo-lint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer.Name, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// cfgLookup serves dependency export data from the vet config's
// PackageFile table.
func cfgLookup(cfg *vetConfig) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// vetImporter applies the unit's ImportMap before delegating to the
// export-data importer.
type vetImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func (im *vetImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.gc.Import(path)
}
