// Command gumbo-lint runs the project's analyzer suite — the static
// checks that enforce the engine's ownership, determinism and
// scheduling contracts (see docs/INVARIANTS.md for the catalogue and
// internal/lint for the analyzers).
//
// Two modes share one driver:
//
// Multichecker (the CI gate and local entry point):
//
//	go run ./cmd/gumbo-lint ./...
//	go run ./cmd/gumbo-lint -list
//
// loads the named packages (test files included) and reports every
// finding as file:line:col: [analyzer] message, exiting 1 when
// anything is found and 0 on a clean tree.
//
// Vet tool: when invoked by `go vet -vettool=<binary>`, the go command
// drives the same analyzers through vet's unit-checker protocol
// (-V=full for the build cache, -flags for flag discovery, then one
// JSON .cfg file per package):
//
//	go build -o /tmp/gumbo-lint ./cmd/gumbo-lint
//	go vet -vettool=/tmp/gumbo-lint ./...
//
// Findings may be suppressed line-by-line with
// //lint:ignore <analyzer> <reason>; a directive without a reason is
// itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	// Vet protocol flags must be inspected before flag.Parse so the
	// tool responds to the go command's probes exactly as a vettool
	// must (see unitchecker.go).
	if handleVetProtocol(os.Args[1:]) {
		return
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gumbo-lint [-list] <packages>\n       (as vettool) gumbo-lint <file.cfg>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := load.Load(cwd, args...)
	if err != nil {
		fatal(err)
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(lint.Analyzers(), pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.ReportFiles)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", relPosition(cwd, pkg, d), d.Analyzer.Name, d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "gumbo-lint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// relPosition renders a diagnostic position with the filename relative
// to dir when possible, keeping output stable across checkouts.
func relPosition(dir string, pkg *load.Package, d analysis.Diagnostic) string {
	pos := pkg.Fset.Position(d.Pos)
	if rel, ok := strings.CutPrefix(pos.Filename, dir+string(os.PathSeparator)); ok {
		pos.Filename = rel
	}
	return pos.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gumbo-lint:", err)
	os.Exit(2)
}
