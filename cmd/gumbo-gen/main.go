// Command gumbo-gen generates synthetic datasets for an SGF query in
// the paper's style (§5.1): every base relation used as a guard gets
// uniform random n-ary tuples; every conditional-only relation gets
// tuples whose join column matches the guard at a controlled rate.
// Relations are written as <out>/<name>.tsv, ready for cmd/gumbo -data.
//
// Usage:
//
//	gumbo-gen -q 'Z := SELECT x FROM R(x,y) WHERE S(x);' -tuples 1000000 -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sgf"
	"repro/internal/workload"
)

func main() {
	var (
		queryFile = flag.String("query", "", "file containing the SGF query")
		queryText = flag.String("q", "", "inline SGF query text")
		tuples    = flag.Int("tuples", 1000000, "tuples per relation")
		match     = flag.Float64("match", 0.5, "fraction of conditional tuples matching the guard")
		sel       = flag.Float64("selectivity", -1, "if ≥ 0, fix the fraction of guard tuples each conditional matches instead")
		seed      = flag.Int64("seed", 1, "generator seed")
		outDir    = flag.String("out", "data", "output directory")
	)
	flag.Parse()

	src := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		fatalIf(err)
		src = string(b)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "gumbo-gen: provide -query FILE or -q 'QUERY'")
		os.Exit(2)
	}
	prog, err := sgf.Parse(src)
	fatalIf(err)

	wl := workload.Workload{
		Name:        "gen",
		Program:     prog,
		GuardTuples: *tuples,
		CondTuples:  *tuples,
		MatchFrac:   *match,
		Seed:        *seed,
	}
	if *sel >= 0 {
		wl = wl.WithSelectivity(*sel)
	}
	db := wl.Build(1.0)

	fatalIf(os.MkdirAll(*outDir, 0o755))
	for _, rel := range db.Relations() {
		path := filepath.Join(*outDir, rel.Name()+".tsv")
		f, err := os.Create(path)
		fatalIf(err)
		fatalIf(rel.WriteTSV(f))
		fatalIf(f.Close())
		fmt.Printf("%s: %d tuples (%.1f MB)\n", path, rel.Size(), float64(rel.Bytes())/(1<<20))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gumbo-gen:", err)
		os.Exit(1)
	}
}
