package gumbo_test

import (
	"fmt"
	"log"

	gumbo "repro"
)

// Example_quickstart is the README's quick-start snippet, verbatim, so
// the docs' primary example is executed by go test (its compilation is
// additionally enforced by cmd/docscheck in CI).
func Example_quickstart() {
	q, err := gumbo.Parse(`Z := SELECT x FROM R(x, y) WHERE S(y);`)
	if err != nil {
		log.Fatal(err)
	}
	db := gumbo.NewDatabase()
	db.Put(gumbo.FromTuples("R", 2, []gumbo.Tuple{
		{gumbo.Int(1), gumbo.Int(10)},
		{gumbo.Int(2), gumbo.Int(20)},
	}))
	db.Put(gumbo.FromTuples("S", 1, []gumbo.Tuple{{gumbo.Int(10)}}))

	sys := gumbo.New(gumbo.WithHostWorkers(0)) // 0 = GOMAXPROCS
	res, err := sys.Run(q, db, gumbo.Greedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Relation, res.Metrics)
	// Output: Z/1{1 tuples} net 16s total 18s input 0.00GB comm 0.00GB (2 jobs, 2 rounds)
}

// ExampleParse parses and introspects an SGF program.
func ExampleParse() {
	q, err := gumbo.Parse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND NOT T(y);`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q.Name(), q.Subqueries(), q.SemiJoins(), q.Nested())
	// Output: Z 1 2 false
}

// ExampleSystem_Run evaluates a semi-join under the GREEDY strategy.
func ExampleSystem_Run() {
	q := gumbo.MustParse(`Z := SELECT x FROM R(x, y) WHERE S(y);`)
	db := gumbo.NewDatabase()
	db.Put(gumbo.FromTuples("R", 2, []gumbo.Tuple{
		{gumbo.Int(1), gumbo.Int(10)},
		{gumbo.Int(2), gumbo.Int(20)},
	}))
	db.Put(gumbo.FromTuples("S", 1, []gumbo.Tuple{{gumbo.Int(10)}}))
	res, err := gumbo.New().Run(q, db, gumbo.Greedy)
	if err != nil {
		panic(err)
	}
	for _, t := range res.Relation.Sorted() {
		fmt.Println(t)
	}
	// Output: (1)
}

// ExampleEval uses the direct in-memory evaluator.
func ExampleEval() {
	q := gumbo.MustParse(`
		Z1 := SELECT x FROM R(x, y) WHERE S(x);
		Z2 := SELECT x FROM R(x, y) WHERE NOT Z1(x);`)
	db := gumbo.NewDatabase()
	db.Put(gumbo.FromTuples("R", 2, []gumbo.Tuple{
		{gumbo.Int(1), gumbo.Int(2)},
		{gumbo.Int(3), gumbo.Int(4)},
	}))
	db.Put(gumbo.FromTuples("S", 1, []gumbo.Tuple{{gumbo.Int(1)}}))
	out, err := gumbo.Eval(q, db)
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Sorted())
	// Output: [(3)]
}

// ExampleMerge combines two query programs (§4.7) so that their shared
// atoms are evaluated once.
func ExampleMerge() {
	q1 := gumbo.MustParse(`Z1 := SELECT x FROM R(x, y) WHERE S(x);`)
	q2 := gumbo.MustParse(`Z2 := SELECT y FROM R(x, y) WHERE S(x);`)
	merged, err := gumbo.Merge(q1, q2)
	if err != nil {
		panic(err)
	}
	fmt.Println(merged.Subqueries(), merged.SemiJoins())
	// Output: 2 2
}

// ExampleSystem_Plan inspects a plan without running it.
func ExampleSystem_Plan() {
	q := gumbo.MustParse(`Z := SELECT x FROM R(x, y) WHERE S(x) AND T(x);`)
	db := gumbo.NewDatabase()
	db.Put(gumbo.NewRelation("R", 2))
	db.Put(gumbo.NewRelation("S", 1))
	db.Put(gumbo.NewRelation("T", 1))
	sys := gumbo.New()
	plan, err := sys.Plan(q, db, gumbo.OneRound)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan)
	// Output: 1-ROUND: 1 jobs, 1 rounds
}

// ExampleQuery_BaseRelations lists the inputs a query expects.
func ExampleQuery_BaseRelations() {
	q := gumbo.MustParse(`
		Z1 := SELECT aut FROM Amaz(ttl, aut, "bad") WHERE BN(ttl, aut, "bad");
		Z2 := SELECT new, aut FROM Upcoming(new, aut) WHERE NOT Z1(aut);`)
	fmt.Println(q.BaseRelations())
	// Output: [Amaz BN Upcoming]
}
