// Package gumbo is a Go implementation of Gumbo, the system of
// "Parallel Evaluation of Multi-Semi-Joins" (Daenen, Neven, Tan,
// Vansummeren; VLDB 2016): parallel evaluation of Strictly Guarded
// Fragment (SGF) queries with the multi-semi-join MapReduce operator
// MSJ, cost-based job grouping (Greedy-BSGF), and multiway topological
// sorting of subqueries (Greedy-SGF).
//
// The package evaluates SGF queries over in-memory relations on an
// in-process MapReduce engine that measures the byte quantities of the
// paper's cost model and derives simulated net/total times on a
// configurable virtual cluster. On the host, a plan executes as one
// unified task graph: map tasks, shuffle partitions, reduce partitions
// and output merge shards of all of its jobs are scheduled together on
// a single work-stealing worker pool, with producer→consumer edges
// wired per input relation — a dependent job's map tasks over a
// relation start the moment that relation is merged, overlapping phases
// of dependent jobs instead of waiting at job barriers. The
// WithHostWorkers option sizes the pool. Results are deterministic at
// every parallelism setting. A minimal session:
//
//	q, _ := gumbo.Parse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);`)
//	db := gumbo.NewDatabase()
//	db.Put(gumbo.NewRelation("R", 2)) // fill with Add(...)
//	...
//	sys := gumbo.New()
//	res, _ := sys.Run(q, db, gumbo.Greedy)
//	fmt.Println(res.Relation, res.Metrics)
package gumbo

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/mr"
	"repro/internal/refeval"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// Re-exported relational types. Values are int64 handles; use Int and
// Str to construct them and Value.Text to render them.
type (
	// Value is a single data value.
	Value = relation.Value
	// Tuple is an ordered sequence of values.
	Tuple = relation.Tuple
	// Relation is a named set of tuples of fixed arity.
	Relation = relation.Relation
	// Database is a named collection of relations.
	Database = relation.Database
	// Metrics carries the four §5.1 performance metrics of a run.
	Metrics = mr.Metrics
	// JobStats carries the measured quantities of one executed MapReduce
	// job (per-input N_i/M_i, record counts, output K, task counts,
	// per-reducer loads).
	JobStats = mr.JobStats
	// JobTiming carries the measured host wall-clock spent in one job's
	// tasks, by kind. Unlike JobStats it is a measurement of the host and
	// outside the determinism contract.
	JobTiming = mr.JobTiming
	// Progress accumulates live task-completion counters for one run:
	// pass a fresh *Progress to RunPlanObserved and poll Snapshot from
	// any goroutine while the run executes. The zero value is ready to
	// use.
	Progress = mr.Progress
	// ProgressSnapshot is a point-in-time copy of a run's task counters.
	ProgressSnapshot = mr.ProgressSnapshot
	// Budget is a per-query memory budget: the engine charges a run's
	// bulk allocations (arena chunks, shuffle partitions, merge shards,
	// spill buffers) against it and aborts the run with
	// ErrBudgetExceeded when the cumulative total passes the limit.
	// Charges are modelled quantities — a given plan over a given
	// database charges the same total at every parallelism setting, so
	// whether a budget suffices is deterministic.
	Budget = mr.Budget
	// MemStats is the memory accounting of one run (see Result.Mem).
	MemStats = mr.MemStats
	// CostConfig holds the MapReduce cost-model constants (Table 1/5).
	CostConfig = cost.Config
	// Strategy selects an evaluation strategy.
	Strategy = core.Strategy
)

// Evaluation strategies (§5). SEQ, PAR, GREEDY, OPT and OneRound apply
// to flat (dependency-free) query sets; SeqUnit, ParUnit and GreedySGF
// apply to arbitrary SGF programs; HPAR, HPARS and PPAR are the Hive
// and Pig baselines.
const (
	SEQ       = core.StrategySEQ
	PAR       = core.StrategyPAR
	Greedy    = core.StrategyGreedy
	Opt       = core.StrategyOpt
	OneRound  = core.StrategyOneRound
	SeqUnit   = core.StrategySeqUnit
	ParUnit   = core.StrategyParUnit
	GreedySGF = core.StrategyGreedySGF
	HPAR      = baselines.StrategyHPAR
	HPARS     = baselines.StrategyHPARS
	PPAR      = baselines.StrategyPPAR
)

// ErrBudgetExceeded is the sentinel a run's error matches (errors.Is)
// when the run charged past its memory budget. The concrete error also
// carries the limit and the charged/requested totals.
var ErrBudgetExceeded = mr.ErrBudgetExceeded

// NewBudget returns a budget aborting runs that charge more than limit
// bytes (0 = unlimited, accounting only). A Budget governs one run:
// charges accumulate and are never released, so pass a fresh Budget to
// each RunPlanGoverned call.
func NewBudget(limit int64) *Budget { return mr.NewBudget(limit) }

// Int returns the Value for a non-negative integer.
func Int(n int64) Value { return relation.Int(n) }

// Str returns the Value for a string (interned).
func Str(s string) Value { return relation.String(s) }

// NewDatabase returns an empty database.
func NewDatabase() *Database { return relation.NewDatabase() }

// NewRelation returns an empty relation with the given name and arity.
func NewRelation(name string, arity int) *Relation { return relation.New(name, arity) }

// FromTuples builds a relation from tuples (set semantics).
func FromTuples(name string, arity int, tuples []Tuple) *Relation {
	return relation.FromTuples(name, arity, tuples)
}

// DefaultCostConfig returns the paper's measured constants (Table 5).
func DefaultCostConfig() CostConfig { return cost.Default() }

// System evaluates queries under one configuration.
//
// A System is immutable after New and safe for concurrent use: any number
// of goroutines may call Plan, Run, RunPlan and Auto on one System
// simultaneously. Runs never mutate the database they are given (job
// outputs land in a fresh Result.Outputs database), and concurrent runs
// of the same query against the same database produce bit-for-bit
// identical Results (see WithHostWorkers for the underlying
// determinism contract). Callers may load new relations into a Database
// concurrently with runs — Database is internally locked — but a run
// that overlaps a load may observe either version of the relation;
// services that need a stable snapshot should key work off
// Database.Generation, as internal/server does.
type System struct {
	costCfg        cost.Config
	clusterCfg     cluster.Config
	hostWorkers    int
	spillThreshold int64
	spillDir       string
	skewSplit      float64
	runner         *exec.Runner
}

// Option configures a System.
type Option func(*System)

// WithCostConfig replaces the cost-model constants.
func WithCostConfig(c CostConfig) Option {
	return func(s *System) { s.costCfg = c }
}

// WithCluster sets the simulated cluster size (nodes × container slots
// per node). The paper's testbed is 10×10.
func WithCluster(nodes, slotsPerNode int) Option {
	return func(s *System) { s.clusterCfg = cluster.Config{Nodes: nodes, SlotsPerNode: slotsPerNode} }
}

// WithScale scales the size-dependent cost settings (buffers, splits,
// reducer allocation) for runs at a fraction of the paper's data sizes.
func WithScale(f float64) Option {
	return func(s *System) { s.costCfg = s.costCfg.Scaled(f) }
}

// WithHostWorkers sizes the in-process engine's unified worker pool:
// every task of a plan — map tasks, shuffle partitions, reduce
// partitions and output merge shards, across all of the plan's jobs —
// runs on these `workers` goroutines, scheduled work-stealing at
// partition granularity (a dependent job's map tasks over a relation
// start the moment that relation is merged). Zero means GOMAXPROCS;
// 1 forces strictly sequential execution.
//
// Determinism contract: every Result field — output relations including
// their tuple iteration order, per-job stats, and simulated metrics —
// is bit-for-bit identical at every pool width; only host wall-clock
// time and memory change. The engine guarantees this by partitioning
// shuffle output in map-task order, reducing keys in sorted order with
// messages in arrival order, merging job outputs in
// sorted-name/reducer-index order, and publishing each merged relation
// before releasing the map tasks that read it (see
// docs/ARCHITECTURE.md, "Determinism contract").
func WithHostWorkers(workers int) Option {
	return func(s *System) { s.hostWorkers = workers }
}

// WithSpill enables shuffle spill-to-disk: a shuffle partition whose
// modelled bytes reach threshold is written to a temp file under dir
// ("" = os.TempDir) and streamed back by the reduce stage, bounding the
// resident intermediate state of large shuffles. Outputs, stats and
// metrics are bit-for-bit identical to the in-memory path. threshold 0
// defers to the GUMBO_SPILL_THRESHOLD environment variable (unset =
// spill off); negative disables spill unconditionally. Temp files never
// outlive the run — completed, canceled, over-budget and panicked runs
// all remove them.
func WithSpill(threshold int64, dir string) Option {
	return func(s *System) { s.spillThreshold, s.spillDir = threshold, dir }
}

// WithSkewSplit enables runtime skew splitting: after a job's shuffle,
// a reduce partition whose modelled bytes exceed ratio × the mean
// partition load is split at heavy-key boundaries (detected by a
// shuffle-time sketch) into sub-tasks the pool schedules
// independently, so one hot key no longer serializes the reduce wave.
// Outputs, stats and metrics are bit-for-bit identical to the unsplit
// run; only JobStats.SplitReduceTasks / MaxReduceTaskMB report the
// splitting, deterministically. ratio 0 defers to the GUMBO_SKEW_SPLIT
// environment variable (unset = splitting off); negative disables
// splitting unconditionally. 1.5 is a reasonable starting ratio. When
// splitting is enabled, plan-time static salting
// (core.SkewAwareBasicPlan) stands down and lets the runtime handle
// skew.
func WithSkewSplit(ratio float64) Option {
	return func(s *System) { s.skewSplit = ratio }
}

// WithHostParallelism is the earlier two-knob form of WithHostWorkers,
// from when the engine bounded per-phase workers and concurrently
// executing jobs separately. The unified task-graph scheduler has a
// single pool per run; to preserve the effective concurrency existing
// callers asked for, the alias sizes that pool at
// phaseWorkers × concurrentJobs — the old configuration's worst-case
// goroutine budget. Zero for either knob meant GOMAXPROCS at that
// level and maps to a GOMAXPROCS-wide pool.
//
// Deprecated: use WithHostWorkers.
func WithHostParallelism(phaseWorkers, concurrentJobs int) Option {
	if phaseWorkers <= 0 || concurrentJobs <= 0 {
		return WithHostWorkers(0)
	}
	return WithHostWorkers(phaseWorkers * concurrentJobs)
}

// New returns a System with the paper's default configuration. Options
// are applied once here; the returned System is immutable.
func New(opts ...Option) *System {
	s := &System{costCfg: cost.Default(), clusterCfg: cluster.DefaultConfig()}
	for _, o := range opts {
		o(s)
	}
	s.runner = exec.NewRunner(s.costCfg, s.clusterCfg).
		WithHostWorkers(s.hostWorkers).
		WithSpill(s.spillThreshold, s.spillDir).
		WithSkewSplit(s.skewSplit)
	return s
}

// Result is the outcome of running a query.
type Result struct {
	// Relation is the query program's final output relation.
	Relation *Relation
	// Outputs contains every relation the executed program produced,
	// including intermediate MSJ outputs. Iteration order
	// (Database.Relations) is deterministic and schedule-independent:
	// jobs in plan-declared order, and within one job its output
	// relations in sorted-name order. Tuples within each relation are
	// likewise in a deterministic order (reduce tasks merge in reducer
	// index order, each reducer emits keys in ascending key order).
	Outputs *Database
	// Metrics are the measured/simulated performance metrics.
	Metrics Metrics
	// JobStats holds the per-job measurements behind Metrics, in
	// plan-declared job order (schedule-independent).
	JobStats []JobStats
	// JobTimings holds the measured per-job task wall-clock aligned with
	// JobStats. Host measurements: they vary run to run and are excluded
	// from the determinism contract.
	JobTimings []JobTiming
	// Mem is the run's memory accounting: bytes charged at the engine's
	// accounted allocation sites and spill activity. Charged/Spilled
	// totals are modelled, schedule-independent quantities like
	// JobStats.
	Mem MemStats
	// Plan describes the executed MR program.
	Plan *Plan
}

// Plan wraps an executable MapReduce plan. Plans are stateless: a Plan
// may be executed any number of times and concurrently (see RunPlan).
type Plan struct {
	inner *core.Plan
	// output is the source program's final output relation (set when the
	// plan is built through System.Plan; unit-based plans may list
	// inner.Outputs in level order rather than declaration order).
	output string
}

// Strategy returns the plan's strategy.
func (p *Plan) Strategy() Strategy { return p.inner.Strategy }

// Jobs returns the number of MapReduce jobs.
func (p *Plan) Jobs() int { return len(p.inner.Jobs) }

// Rounds returns the length of the longest job dependency chain.
func (p *Plan) Rounds() int { return p.inner.Rounds() }

// String renders a one-line summary.
func (p *Plan) String() string {
	return fmt.Sprintf("%s: %d jobs, %d rounds", p.inner.Strategy, p.Jobs(), p.Rounds())
}

// Plan builds the MapReduce plan for q under the strategy without
// running it. Cost-based strategies sample db to estimate job costs.
func (s *System) Plan(q *Query, db *Database, strategy Strategy) (*Plan, error) {
	inner, err := s.plan(q, db, strategy)
	if err != nil {
		return nil, err
	}
	return &Plan{inner: inner, output: q.Name()}, nil
}

func (s *System) plan(q *Query, db *Database, strategy Strategy) (*core.Plan, error) {
	prog := q.prog
	queries := prog.Queries
	name := fmt.Sprintf("%s-%s", q.Name(), strategy)
	est := func() *core.Estimator {
		return core.NewEstimator(s.costCfg, cost.Gumbo, db, prog)
	}
	flat := func() error {
		if err := sgf.CheckForwardRefs(prog); err != nil {
			return err
		}
		g := sgf.BuildDepGraph(prog)
		for i := 0; i < g.N; i++ {
			if len(g.Pred[i]) > 0 {
				return fmt.Errorf("gumbo: strategy %s requires dependency-free queries; use SeqUnit, ParUnit or GreedySGF", strategy)
			}
		}
		return nil
	}
	switch strategy {
	case core.StrategySEQ:
		if err := flat(); err != nil {
			return nil, err
		}
		return core.SeqPlanMulti(name, queries)
	case core.StrategyPAR:
		if err := flat(); err != nil {
			return nil, err
		}
		return core.ParPlan(name, queries)
	case core.StrategyGreedy:
		if err := flat(); err != nil {
			return nil, err
		}
		return est().GreedyPlan(name, queries)
	case core.StrategyOpt:
		if err := flat(); err != nil {
			return nil, err
		}
		return est().OptPlan(name, queries)
	case core.StrategyOneRound:
		if err := flat(); err != nil {
			return nil, err
		}
		return core.OneRoundPlan(name, queries)
	case core.StrategySeqUnit:
		return core.SeqUnitPlan(name, prog)
	case core.StrategyParUnit:
		return core.ParUnitPlan(name, prog)
	case core.StrategyGreedySGF:
		return est().GreedySGFPlan(name, prog)
	case baselines.StrategyHPAR:
		if err := flat(); err != nil {
			return nil, err
		}
		return baselines.HParPlan(name, queries)
	case baselines.StrategyHPARS:
		if err := flat(); err != nil {
			return nil, err
		}
		return baselines.HParSPlan(name, queries)
	case baselines.StrategyPPAR:
		if err := flat(); err != nil {
			return nil, err
		}
		return baselines.PParPlan(name, queries)
	default:
		return nil, fmt.Errorf("gumbo: unknown strategy %q", strategy)
	}
}

// Run plans and executes q against db under the strategy. It is
// equivalent to Plan followed by RunPlan.
func (s *System) Run(q *Query, db *Database, strategy Strategy) (*Result, error) {
	//lint:ignore ctxpass Run is the library's documented no-cancellation entry point; RunCtx is the context-aware form
	return s.RunCtx(context.Background(), q, db, strategy)
}

// RunCtx is Run honoring ctx: the engine stops at the next task
// boundary after ctx is canceled or its deadline passes, and the
// returned error wraps ctx.Err() — errors.Is(err, context.Canceled)
// or errors.Is(err, context.DeadlineExceeded) holds. The input
// database is never modified, canceled or not.
func (s *System) RunCtx(ctx context.Context, q *Query, db *Database, strategy Strategy) (*Result, error) {
	inner, err := s.plan(q, db, strategy)
	if err != nil {
		return nil, err
	}
	return s.runPlan(ctx, inner, q.Name(), db, nil, nil)
}

// RunPlan executes a previously built plan against db. This is the
// plan-cache hook: services that serve the same query text repeatedly
// can Plan once and RunPlan per request, skipping parsing, validation
// and (for cost-based strategies) database sampling.
//
// Plans are stateless and may be run any number of times, concurrently,
// and against databases other than the one they were planned on, as long
// as the base relations the plan reads still exist with the same names
// and arities. Results are always exact; only the cost-based grouping
// baked into the plan can become stale when the data it was sampled on
// changes, so cache plans keyed by Database.Generation (see
// internal/server) when plan optimality matters.
func (s *System) RunPlan(plan *Plan, db *Database) (*Result, error) {
	//lint:ignore ctxpass RunPlan is the library's documented no-cancellation entry point; RunPlanCtx is the context-aware form
	return s.RunPlanCtx(context.Background(), plan, db)
}

// RunPlanCtx is RunPlan honoring ctx; see RunCtx for the cancellation
// contract.
func (s *System) RunPlanCtx(ctx context.Context, plan *Plan, db *Database) (*Result, error) {
	return s.RunPlanObserved(ctx, plan, db, nil)
}

// RunPlanObserved is RunPlanCtx additionally mirroring live
// task-completion counters into prog when non-nil. Pass a fresh
// *Progress per run and poll prog.Snapshot() from any goroutine while
// the run executes — this is the progress hook services poll without
// waiting for the Result (see internal/server's queries endpoint).
func (s *System) RunPlanObserved(ctx context.Context, plan *Plan, db *Database, prog *Progress) (*Result, error) {
	return s.RunPlanGoverned(ctx, plan, db, prog, nil)
}

// RunPlanGoverned is RunPlanObserved charging the run's bulk
// allocations to budget (one fresh Budget per run; nil runs unlimited
// but still accounted, so Result.Mem is always populated). A run that
// charges past the budget's limit aborts like a cancellation — nil
// Result, the input database untouched, no goroutines or temp files
// left — with an error matching ErrBudgetExceeded via errors.Is. This
// is the admission-control hook internal/server builds its degradation
// ladder on.
func (s *System) RunPlanGoverned(ctx context.Context, plan *Plan, db *Database, prog *Progress, budget *Budget) (*Result, error) {
	output := plan.output
	if output == "" && len(plan.inner.Outputs) > 0 {
		output = plan.inner.Outputs[len(plan.inner.Outputs)-1]
	}
	return s.runPlan(ctx, plan.inner, output, db, prog, budget)
}

func (s *System) runPlan(ctx context.Context, inner *core.Plan, output string, db *Database, prog *Progress, budget *Budget) (*Result, error) {
	res, err := s.runner.RunGoverned(ctx, inner, db, prog, budget)
	if err != nil {
		return nil, err
	}
	return &Result{
		Relation:   res.Outputs.Relation(output),
		Outputs:    res.Outputs,
		Metrics:    res.Metrics,
		JobStats:   res.JobStats,
		JobTimings: res.Timings,
		Mem:        res.Mem,
		Plan:       &Plan{inner: inner, output: output},
	}, nil
}

// PredictBytes estimates how many bytes executing plan against db will
// charge against its budget: deduplicated base-input bytes plus sampled
// intermediate sizes for first-round jobs (later rounds read produced
// relations, unknowable before the run). A planning-time figure for
// admission control — same order as the real charge, not a bound.
func (s *System) PredictBytes(plan *Plan, db *Database) int64 {
	return s.runner.PredictPlanBytes(plan.inner, db)
}

// Auto picks a strategy for q by structure, cheapest applicable shape
// first:
//
//  1. if any subquery depends on another subquery's output (a nested
//     program), GreedySGF — the only cost-based strategy that handles
//     dependencies;
//  2. else if every query admits the fused map/reduce form (all its
//     conditional atoms share one join key, or its condition is a pure
//     disjunction of possibly negated atoms — see
//     core.OneRoundApplicable), OneRound — one MR round, no
//     intermediate X relations;
//  3. else Greedy — cost-based grouping of the flat query set's
//     semi-join equations into shared MSJ jobs.
//
// Auto inspects only the query's structure, never the database, so its
// choice is stable across databases; use Plan with an explicit strategy
// to compare alternatives under the cost model.
func (s *System) Auto(q *Query) Strategy {
	g := sgf.BuildDepGraph(q.prog)
	nested := false
	for i := 0; i < g.N; i++ {
		if len(g.Pred[i]) > 0 {
			nested = true
			break
		}
	}
	if nested {
		return GreedySGF
	}
	allOneRound := true
	for _, bq := range q.prog.Queries {
		if core.OneRoundApplicable(bq) == core.OneRoundInapplicable {
			allOneRound = false
			break
		}
	}
	if allOneRound {
		return OneRound
	}
	return Greedy
}

// Eval evaluates q directly in memory (the reference evaluator), without
// MapReduce. Useful for testing and for small inputs.
func Eval(q *Query, db *Database) (*Relation, error) {
	return refeval.EvalOutput(q.prog, db)
}

// EvalAll evaluates q directly and returns every output relation.
func EvalAll(q *Query, db *Database) (*Database, error) {
	return refeval.EvalProgram(q.prog, db)
}
